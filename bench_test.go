// Package repro's bench harness regenerates every table and figure of
// the paper (see DESIGN.md §4 for the E1-E12 experiment index and
// EXPERIMENTS.md for paper-vs-measured outcomes). Each benchmark reports
// the experiment's headline quantities as custom metrics so that
// `go test -bench=. -benchmem` reproduces the evaluation in one run; the
// cmd/puf-bench tool prints the same results as human-readable tables.
package repro

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/campaign"
	"repro/internal/experiments"
	"repro/internal/perm"
	"repro/internal/transcript"
)

// BenchmarkTableI_KendallCoding (E1) regenerates the paper's Table I:
// compact and Kendall codings of all 24 orders of four ROs.
func BenchmarkTableI_KendallCoding(b *testing.B) {
	var rows []experiments.TableIRow
	for i := 0; i < b.N; i++ {
		rows = experiments.TableI()
	}
	if len(rows) != 24 {
		b.Fatalf("%d rows", len(rows))
	}
	b.ReportMetric(float64(len(rows)), "rows")
	b.ReportMetric(float64(len(rows[0].Kendall)), "kendall-bits")
	b.ReportMetric(float64(len(rows[0].Compact)), "compact-bits")
}

// BenchmarkFig2_FrequencyTopology (E2) reproduces the Fig. 2 variance
// decomposition: systematic trend dominates raw variance; distillation
// reduces the residual to the random-component level.
func BenchmarkFig2_FrequencyTopology(b *testing.B) {
	var r experiments.Fig2Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.Fig2(uint64(i) + 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.RawVariance, "raw-var-MHz2")
	b.ReportMetric(r.ResidualVar, "resid-var-MHz2")
	b.ReportMetric(r.RandVariance, "random-var-MHz2")
	b.ReportMetric(r.RawVariance/r.ResidualVar, "distill-gain")
}

// BenchmarkFig3_PairClassification (E3) reproduces the Fig. 3 good /
// bad / cooperating pair classification at the default threshold.
func BenchmarkFig3_PairClassification(b *testing.B) {
	var rows []experiments.Fig3Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Fig3(uint64(i)+1, []float64{0.6})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows[0].Good), "good-pairs")
	b.ReportMetric(float64(rows[0].Bad), "bad-pairs")
	b.ReportMetric(float64(rows[0].Coop), "coop-pairs")
}

// BenchmarkFig5_FailureRatePDFs (E4) reproduces the Fig. 5 error-count
// PDFs and their distinguishability.
func BenchmarkFig5_FailureRatePDFs(b *testing.B) {
	var r experiments.Fig5Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.Fig5(uint64(i)+3, 300)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.FailNominal, "p-fail-nominal")
	b.ReportMetric(r.FailH0, "p-fail-H0")
	b.ReportMetric(r.FailH1, "p-fail-H1")
	b.ReportMetric(r.TVDistance, "tv-distance")
}

// BenchmarkFig6a_GroupBasedAttack (E5/E10) runs the §VI-C full key
// recovery on the paper's 4x10 Fig. 6 array.
func BenchmarkFig6a_GroupBasedAttack(b *testing.B) {
	var r transcript.Transcript
	var err error
	recovered := 0
	for i := 0; i < b.N; i++ {
		r, err = experiments.RunAttack(context.Background(),
			transcript.Spec{Attack: "groupbased", Seed: uint64(i)*3 + 9})
		if err != nil {
			b.Fatal(err)
		}
		if r.Recovered {
			recovered++
		}
	}
	b.ReportMetric(float64(r.EnrolledKeyBits), "key-bits")
	b.ReportMetric(float64(r.Queries), "oracle-queries")
	b.ReportMetric(float64(recovered)/float64(b.N), "recovery-rate")
}

// BenchmarkFig6b_MaskingAttack (E6) runs the distiller + 1-out-of-5
// masking attack.
func BenchmarkFig6b_MaskingAttack(b *testing.B) {
	var r transcript.Transcript
	var err error
	recovered := 0
	for i := 0; i < b.N; i++ {
		r, err = experiments.RunAttack(context.Background(),
			transcript.Spec{Attack: "masking", Seed: uint64(i)*3 + 11})
		if err != nil {
			b.Fatal(err)
		}
		if r.Recovered {
			recovered++
		}
	}
	b.ReportMetric(float64(r.EnrolledKeyBits), "key-bits")
	b.ReportMetric(float64(r.Queries), "oracle-queries")
	b.ReportMetric(float64(recovered)/float64(b.N), "recovery-rate")
}

// BenchmarkFig6c_NeighborChainAttack (E7) runs the distiller +
// overlapping chain attack with its 2^4 hypothesis sets.
func BenchmarkFig6c_NeighborChainAttack(b *testing.B) {
	var r transcript.Transcript
	var err error
	recovered := 0
	for i := 0; i < b.N; i++ {
		r, err = experiments.RunAttack(context.Background(),
			transcript.Spec{Attack: "chain", Seed: uint64(i)*3 + 13})
		if err != nil {
			b.Fatal(err)
		}
		if r.Recovered {
			recovered++
		}
	}
	b.ReportMetric(float64(r.EnrolledKeyBits), "key-bits")
	b.ReportMetric(float64(r.MaxHypotheses), "max-hypotheses")
	b.ReportMetric(float64(r.Queries), "oracle-queries")
	b.ReportMetric(float64(recovered)/float64(b.N), "recovery-rate")
}

// BenchmarkAttackSeqPair (E8) runs the §VI-A key recovery end to end
// with the expurgated code (full recovery including the complement bit).
func BenchmarkAttackSeqPair(b *testing.B) {
	var r transcript.Transcript
	var err error
	recovered := 0
	for i := 0; i < b.N; i++ {
		r, err = experiments.RunAttack(context.Background(),
			transcript.Spec{Attack: "seqpair", Seed: uint64(i)*3 + 5, Expurgate: true})
		if err != nil {
			b.Fatal(err)
		}
		if r.Recovered {
			recovered++
		}
	}
	b.ReportMetric(float64(r.EnrolledKeyBits), "key-bits")
	b.ReportMetric(float64(r.Queries), "oracle-queries")
	b.ReportMetric(float64(r.Queries)/float64(r.EnrolledKeyBits), "queries-per-bit")
	b.ReportMetric(float64(recovered)/float64(b.N), "recovery-rate")
}

// BenchmarkAttackTempCo (E9) runs the §VI-B relation recovery end to
// end, scored against silicon ground truth.
func BenchmarkAttackTempCo(b *testing.B) {
	var r transcript.Transcript
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.RunAttack(context.Background(),
			transcript.Spec{Attack: "tempco", Seed: uint64(i)*3 + 7})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.RelationsFound), "relations")
	b.ReportMetric(float64(r.RelationsRight)/float64(r.RelationsFound), "relation-accuracy")
	b.ReportMetric(float64(r.MaskBitsFound), "absolute-mask-bits")
	b.ReportMetric(float64(r.Queries), "oracle-queries")
}

// BenchmarkEntropyAccounting (E11) reproduces the log2(N!) and
// sum log2(|Gj|!) entropy figures of §II and §V-B.
func BenchmarkEntropyAccounting(b *testing.B) {
	var rows []experiments.EntropyRow
	for i := 0; i < b.N; i++ {
		rows = experiments.EntropyAccounting(uint64(i)+15, []float64{0.5})
	}
	b.ReportMetric(rows[0].TotalBits, "log2-N!-bits")
	b.ReportMetric(rows[0].EntropyBits, "grouped-entropy-bits")
	b.ReportMetric(float64(rows[0].KeyBits), "packed-key-bits")
}

// BenchmarkFuzzyExtractorResistance (E12) contrasts the attacker's
// single-manipulation advantage on the fuzzy extractor (≈0) with the
// LISA construction (≈1).
func BenchmarkFuzzyExtractorResistance(b *testing.B) {
	var r experiments.FuzzyResistanceResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.FuzzyResistance(uint64(i)*2+17, 40)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.FuzzyAdvantage, "fuzzy-advantage")
	b.ReportMetric(r.SeqPairAdvantage, "lisa-advantage")
}

// BenchmarkAblationStoragePolicy (A1, §VII-C) quantifies the direct
// leakage of sorted versus randomized within-pair storage. The sweep
// fans out over the campaign pool (timing is pooled on multi-core
// hosts; the reported fractions are worker-count invariant).
func BenchmarkAblationStoragePolicy(b *testing.B) {
	var r experiments.StorageLeakage
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.AblationStoragePolicy(uint64(i)+19, 5)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.SortedOnesFraction, "sorted-ones-fraction")
	b.ReportMetric(r.RandomizedOnesFraction, "randomized-ones-fraction")
}

// BenchmarkAblationStrategy (A3) compares the sequential and
// fixed-sample distinguishers' oracle cost on the same attack.
func BenchmarkAblationStrategy(b *testing.B) {
	var r experiments.StrategyCost
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.AblationStrategy(uint64(i)*2 + 21)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.SequentialQueries), "sequential-queries")
	b.ReportMetric(float64(r.FixedSampleQueries), "fixed-queries")
}

// BenchmarkEntropyLog2Factorial exercises the §II total-entropy formula
// across array sizes (micro-benchmark supporting E11).
func BenchmarkEntropyLog2Factorial(b *testing.B) {
	var v float64
	for i := 0; i < b.N; i++ {
		v = perm.Log2Factorial(512)
	}
	b.ReportMetric(v, "bits-512-ROs")
}

// BenchmarkAblationOffsetSize (A4) sweeps the common offset of Fig. 5
// from 1 to the code radius, reporting the calibrated rate separation.
// The offset levels fan out over the campaign pool (timing is pooled on
// multi-core hosts; the reported metrics are worker-count invariant).
func BenchmarkAblationOffsetSize(b *testing.B) {
	var rows []experiments.OffsetSizeRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.AblationOffsetSize(uint64(i) + 23)
		if err != nil {
			b.Fatal(err)
		}
	}
	last := rows[len(rows)-1]
	b.ReportMetric(last.PElevated-last.PNominal, "separation-at-t")
	b.ReportMetric(rows[0].PElevated-rows[0].PNominal, "separation-at-1")
	b.ReportMetric(float64(last.Queries), "queries-at-t")
}

// BenchmarkCampaignAttackSuccess measures the campaign engine's
// parallel-vs-serial wall clock on the heaviest registered task: all
// five attacks per seed over an 8-seed population. The workers-1 run is
// the serial baseline; on an N-core host the workers-8 run approaches
// min(8, N)x speedup (the per-seed work is embarrassingly parallel and
// allocation-light). Aggregates are asserted bit-identical across
// worker counts on every iteration.
func BenchmarkCampaignAttackSuccess(b *testing.B) {
	const seeds = 8
	baseline, err := experiments.MeasureAttackSuccessWorkers(context.Background(), 1000, seeds, 1)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := experiments.MeasureAttackSuccessWorkers(context.Background(), 1000, seeds, workers)
				if err != nil {
					b.Fatal(err)
				}
				if r != baseline {
					b.Fatalf("workers=%d diverged from serial: %+v vs %+v", workers, r, baseline)
				}
			}
			b.ReportMetric(float64(seeds), "seeds")
		})
	}
}

// BenchmarkCampaignEngine measures the engine's own fan-out overhead on
// a lighter task (the Fig. 2 variance decomposition), serial vs pooled.
func BenchmarkCampaignEngine(b *testing.B) {
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("fig2-workers-%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := campaign.Run(context.Background(), campaign.Spec{
					Task: "fig2", BaseSeed: 7, Seeds: 16, Workers: workers,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAttackSuccessRates (R1) measures exact-recovery rates of all
// attacks over a device population. MeasureAttackSuccess fans out over
// the campaign pool, so this timing reflects the pooled path on
// multi-core hosts; BenchmarkCampaignAttackSuccess/workers-1 is the
// serial baseline.
func BenchmarkAttackSuccessRates(b *testing.B) {
	var r experiments.AttackSuccessRates
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.MeasureAttackSuccess(uint64(i)*997+1000, 3)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.SeqPair, "seqpair-success")
	b.ReportMetric(r.GroupBased, "groupbased-success")
	b.ReportMetric(r.Masking, "masking-success")
	b.ReportMetric(r.Chain, "chain-success")
	b.ReportMetric(r.TempCoRel, "tempco-rel-accuracy")
}
