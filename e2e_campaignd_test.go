//go:build e2e

package repro

// End-to-end smoke of the campaign service's shutdown contracts,
// exercised through the real binaries: start puf-campaignd against a
// temp state directory, submit a campaign through puf-campaign -addr,
// stop the daemon mid-run after at least one checkpointed shard,
// restart it on the same state directory, and require that
//
//   - the client (which reconnects through the restart) exits 0 with a
//     full result, and
//   - that result is byte-identical to a local one-shot run of the same
//     spec — and to one at a different worker count.
//
// Both halves of the contract are covered: TestE2ECampaignd SIGKILLs
// the daemon (crash path — an in-flight shard may legitimately re-run),
// TestE2ECampaigndDrain SIGTERMs it (graceful drain — the daemon exits
// 0 with every in-flight shard checkpointed, and not a single shard is
// ever executed twice).
//
// Excluded from the default test run (build tag e2e) because it builds
// binaries and kills processes; CI runs it as its own job:
//
//	go test -tags e2e -run TestE2ECampaignd -v .

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"repro/internal/campaign"
)

const (
	e2eTask    = "attack-success"
	e2eSeeds   = 24
	e2eBase    = 99
	e2eWorkers = 2
)

func e2eSpecArgs() []string {
	return []string{
		"-task", e2eTask,
		"-seeds", fmt.Sprint(e2eSeeds),
		"-base", fmt.Sprint(e2eBase),
		"-workers", fmt.Sprint(e2eWorkers),
		"-json",
	}
}

// buildBinaries compiles the daemon and CLI into dir.
func buildBinaries(t *testing.T, dir string) (daemon, cli string) {
	t.Helper()
	daemon = filepath.Join(dir, "puf-campaignd")
	cli = filepath.Join(dir, "puf-campaign")
	for bin, pkg := range map[string]string{daemon: "./cmd/puf-campaignd", cli: "./cmd/puf-campaign"} {
		cmd := exec.Command("go", "build", "-o", bin, pkg)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("go build %s: %v\n%s", pkg, err, out)
		}
	}
	return daemon, cli
}

// freeAddr reserves a localhost port and releases it for the daemon.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// startDaemon launches puf-campaignd and waits for /healthz.
func startDaemon(t *testing.T, bin, addr, state string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin, "-addr", addr, "-state", state, "-shard-size", "2", "-throttle", "250ms")
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return cmd
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("daemon on %s never became healthy", addr)
	panic("unreachable")
}

// jobProgress reads the single job's (state, shards done, shards total)
// from the list endpoint.
func jobProgress(t *testing.T, addr string) (state string, done, total int, ok bool) {
	resp, err := http.Get("http://" + addr + "/v1/campaigns")
	if err != nil {
		return "", 0, 0, false
	}
	defer resp.Body.Close()
	var list struct {
		Jobs []struct {
			State       string `json:"state"`
			ShardsDone  int    `json:"shards_done"`
			ShardsTotal int    `json:"shards_total"`
		} `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil || len(list.Jobs) != 1 {
		return "", 0, 0, false
	}
	j := list.Jobs[0]
	return j.State, j.ShardsDone, j.ShardsTotal, true
}

// runLocal executes the CLI in local mode and returns the parsed result.
func runLocal(t *testing.T, cli string, workers int) *campaign.Result {
	t.Helper()
	args := []string{
		"-task", e2eTask,
		"-seeds", fmt.Sprint(e2eSeeds),
		"-base", fmt.Sprint(e2eBase),
		"-workers", fmt.Sprint(workers),
		"-json",
	}
	out, err := exec.Command(cli, args...).Output()
	if err != nil {
		t.Fatalf("local run: %v", err)
	}
	var res campaign.Result
	if err := json.Unmarshal(out, &res); err != nil {
		t.Fatalf("local run: decode: %v", err)
	}
	return &res
}

func canonical(t *testing.T, res *campaign.Result) string {
	t.Helper()
	blob, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return string(blob)
}

func TestE2ECampaignd(t *testing.T) {
	dir := t.TempDir()
	daemonBin, cli := buildBinaries(t, dir)
	state := filepath.Join(dir, "state")
	addr := freeAddr(t)

	daemon1 := startDaemon(t, daemonBin, addr, state)

	// Submit through the CLI client; it streams until the job is done,
	// reconnecting through the daemon restart below.
	clientOut := new(bytes.Buffer)
	client := exec.Command(cli, append([]string{"-addr", "http://" + addr}, e2eSpecArgs()...)...)
	client.Stdout = clientOut
	client.Stderr = os.Stderr
	if err := client.Start(); err != nil {
		t.Fatal(err)
	}
	clientDone := make(chan error, 1)
	go func() { clientDone <- client.Wait() }()
	t.Cleanup(func() {
		if client.Process != nil {
			client.Process.Kill()
		}
	})

	// Wait until the job is provably mid-sweep: >= 1 checkpointed shard,
	// not all. The daemon's -throttle 250ms paces 12 shards over ~1.5s
	// on 2 workers, so this window is wide.
	deadline := time.Now().Add(30 * time.Second)
	var killedAt int
	for {
		if time.Now().After(deadline) {
			t.Fatal("job never reached a mid-sweep checkpoint")
		}
		st, done, total, ok := jobProgress(t, addr)
		if ok && st == "done" {
			t.Fatal("job finished before the kill; raise -throttle")
		}
		if ok && done >= 1 && done < total {
			killedAt = done
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Hard kill: no graceful shutdown, no terminal checkpoint record.
	if err := daemon1.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	daemon1.Wait()
	t.Logf("daemon killed with %d shards checkpointed", killedAt)

	// Restart on the same state directory; the job must resume from its
	// checkpoints and the client must ride through.
	startDaemon(t, daemonBin, addr, state)

	select {
	case err := <-clientDone:
		if err != nil {
			t.Fatalf("client failed across the restart: %v", err)
		}
	case <-time.After(120 * time.Second):
		t.Fatal("client did not complete after the daemon restart")
	}
	var resumed campaign.Result
	if err := json.Unmarshal(clientOut.Bytes(), &resumed); err != nil {
		t.Fatalf("client output: %v\n%s", err, clientOut.Bytes())
	}

	// The resumed result must be byte-identical to an uninterrupted
	// local one-shot run of the same spec...
	local := runLocal(t, cli, e2eWorkers)
	if canonical(t, &resumed) != canonical(t, local) {
		t.Fatalf("resumed daemon result differs from local one-shot run:\n%s\nvs\n%s",
			canonical(t, &resumed), canonical(t, local))
	}
	// ...and, aggregates and outcomes, to a run at a different worker
	// count (the Workers field itself legitimately differs).
	other := runLocal(t, cli, e2eWorkers+3)
	aggA, _ := json.Marshal(resumed.Aggregates)
	aggB, _ := json.Marshal(other.Aggregates)
	if !bytes.Equal(aggA, aggB) {
		t.Fatalf("aggregates differ across worker counts:\n%s\nvs\n%s", aggA, aggB)
	}
	outA, _ := json.Marshal(resumed.Outcomes)
	outB, _ := json.Marshal(other.Outcomes)
	if !bytes.Equal(outA, outB) {
		t.Fatal("outcomes differ across worker counts")
	}
}

// shardRecordCounts replays the job's raw checkpoint JSONL and returns
// per-shard record counts plus whether a terminal status record exists.
func shardRecordCounts(t *testing.T, state string) (counts map[int]int, hasStatus bool) {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(state, "*.jsonl"))
	if err != nil || len(files) != 1 {
		t.Fatalf("state dir holds %d checkpoint files (%v)", len(files), err)
	}
	blob, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	counts = make(map[int]int)
	for _, line := range bytes.Split(bytes.TrimRight(blob, "\n"), []byte("\n")) {
		var rec struct {
			Type  string `json:"type"`
			Shard int    `json:"shard"`
		}
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("unparseable checkpoint line %q: %v", line, err)
		}
		switch rec.Type {
		case "shard":
			counts[rec.Shard]++
		case "status":
			hasStatus = true
		}
	}
	return counts, hasStatus
}

// TestE2ECampaigndDrain is the graceful half: SIGTERM mid-sweep must
// drain (finish + checkpoint in-flight shards), exit 0, and the
// restarted daemon must complete the job without re-running a single
// shard — final result byte-identical to a local one-shot run.
func TestE2ECampaigndDrain(t *testing.T) {
	dir := t.TempDir()
	daemonBin, cli := buildBinaries(t, dir)
	state := filepath.Join(dir, "state")
	addr := freeAddr(t)

	daemon1 := startDaemon(t, daemonBin, addr, state)

	clientOut := new(bytes.Buffer)
	client := exec.Command(cli, append([]string{"-addr", "http://" + addr}, e2eSpecArgs()...)...)
	client.Stdout = clientOut
	client.Stderr = os.Stderr
	if err := client.Start(); err != nil {
		t.Fatal(err)
	}
	clientDone := make(chan error, 1)
	go func() { clientDone <- client.Wait() }()
	t.Cleanup(func() {
		if client.Process != nil {
			client.Process.Kill()
		}
	})

	deadline := time.Now().Add(30 * time.Second)
	var drainedAt int
	for {
		if time.Now().After(deadline) {
			t.Fatal("job never reached a mid-sweep checkpoint")
		}
		st, done, total, ok := jobProgress(t, addr)
		if ok && st == "done" {
			t.Fatal("job finished before the drain; raise -throttle")
		}
		if ok && done >= 1 && done < total {
			drainedAt = done
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Graceful stop: SIGTERM must drain and exit 0.
	if err := daemon1.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	daemonDone := make(chan error, 1)
	go func() { daemonDone <- daemon1.Wait() }()
	select {
	case err := <-daemonDone:
		if err != nil {
			t.Fatalf("daemon did not exit 0 on SIGTERM: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
	t.Logf("daemon drained and exited 0 with >=%d shards checkpointed", drainedAt)

	// The drained checkpoint is clean: every recorded shard exactly once,
	// no terminal status record (the job is resumable, not failed).
	before, hasStatus := shardRecordCounts(t, state)
	if hasStatus {
		t.Fatal("drained job wrote a terminal status record")
	}
	if len(before) < drainedAt {
		t.Fatalf("checkpoint holds %d shards, %d were reported done before the drain", len(before), drainedAt)
	}
	for s, n := range before {
		if n != 1 {
			t.Fatalf("shard %d recorded %d times after the drain", s, n)
		}
	}

	// Restart; the client (riding its retry backoff through the outage)
	// must complete with a result identical to a local one-shot run.
	startDaemon(t, daemonBin, addr, state)
	select {
	case err := <-clientDone:
		if err != nil {
			t.Fatalf("client failed across the drain/restart: %v", err)
		}
	case <-time.After(120 * time.Second):
		t.Fatal("client did not complete after the daemon restart")
	}
	var resumed campaign.Result
	if err := json.Unmarshal(clientOut.Bytes(), &resumed); err != nil {
		t.Fatalf("client output: %v\n%s", err, clientOut.Bytes())
	}
	local := runLocal(t, cli, e2eWorkers)
	if canonical(t, &resumed) != canonical(t, local) {
		t.Fatalf("drain-resumed result differs from local one-shot run:\n%s\nvs\n%s",
			canonical(t, &resumed), canonical(t, local))
	}

	// Zero re-runs, end to end: every shard index appears exactly once.
	after, _ := shardRecordCounts(t, state)
	for s, n := range after {
		if n != 1 {
			t.Fatalf("shard %d recorded %d times — a shard was re-run", s, n)
		}
	}
}
