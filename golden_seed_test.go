package repro

// Seed-behavior goldens for the allocation-free query path. Every value
// below was captured from the repository BEFORE the scratch-buffer
// rebuild of the reconstruction hot path (silicon.MeasureInto/
// MeasureSubset, ecc decode-into, device scratch state, adapter write
// caches). The optimized paths must consume the deterministic RNG
// streams identically — sparse measurement draws-and-discards noise for
// skipped oscillators — so keys, recovery outcomes, and above all the
// SPRT-driven oracle-query counts (sensitive to every single App()
// outcome) must reproduce bit-for-bit. A drift in any number here means
// the optimization changed observable behavior, not just speed.

import (
	"context"
	"testing"

	"repro/internal/experiments"
)

func TestGoldenSeqPairAttackTranscripts(t *testing.T) {
	want := []struct {
		seed      uint64
		queries   int
		recovered bool
		keyBits   int
	}{
		{5, 216, true, 64},
		{8, 232, true, 64},
		{11, 230, true, 64},
	}
	for _, w := range want {
		r, err := experiments.RunSeqPairAttack(context.Background(), w.seed, true)
		if err != nil {
			t.Fatalf("seed %d: %v", w.seed, err)
		}
		if r.Queries != w.queries || r.Recovered != w.recovered || r.KeyBits != w.keyBits {
			t.Errorf("seed %d: got (queries=%d recovered=%v bits=%d), want (%d %v %d)",
				w.seed, r.Queries, r.Recovered, r.KeyBits, w.queries, w.recovered, w.keyBits)
		}
	}
}

func TestGoldenGroupBasedAttackTranscripts(t *testing.T) {
	want := []struct {
		seed      uint64
		queries   int
		recovered bool
		keyBits   int
	}{
		{9, 236, true, 56},
		{12, 226, true, 57},
		{15, 242, true, 55},
	}
	for _, w := range want {
		r, err := experiments.RunGroupBasedAttack(context.Background(), w.seed)
		if err != nil {
			t.Fatalf("seed %d: %v", w.seed, err)
		}
		if r.Queries != w.queries || r.Recovered != w.recovered || r.KeyBits != w.keyBits {
			t.Errorf("seed %d: got (queries=%d recovered=%v bits=%d), want (%d %v %d)",
				w.seed, r.Queries, r.Recovered, r.KeyBits, w.queries, w.recovered, w.keyBits)
		}
	}
}

func TestGoldenMaskingAndChainAttackTranscripts(t *testing.T) {
	masking := []struct {
		seed    uint64
		queries int
	}{{11, 92}, {14, 58}, {17, 62}}
	for _, w := range masking {
		r, err := experiments.RunMaskingAttack(context.Background(), w.seed)
		if err != nil {
			t.Fatalf("masking seed %d: %v", w.seed, err)
		}
		if r.Queries != w.queries || !r.Recovered {
			t.Errorf("masking seed %d: got (queries=%d recovered=%v), want (%d true)",
				w.seed, r.Queries, r.Recovered, w.queries)
		}
	}
	chain := []struct {
		seed    uint64
		queries int
	}{{13, 120}, {16, 162}, {19, 146}}
	for _, w := range chain {
		r, err := experiments.RunChainAttack(context.Background(), w.seed)
		if err != nil {
			t.Fatalf("chain seed %d: %v", w.seed, err)
		}
		if r.Queries != w.queries || !r.Recovered {
			t.Errorf("chain seed %d: got (queries=%d recovered=%v), want (%d true)",
				w.seed, r.Queries, r.Recovered, w.queries)
		}
	}
}

func TestGoldenTempCoAttackTranscripts(t *testing.T) {
	want := []struct {
		seed              uint64
		queries           int
		relFound, relOkay int
	}{
		{7, 88, 12, 12},
		{10, 72, 9, 9},
		{13, 86, 13, 13},
	}
	for _, w := range want {
		r, err := experiments.RunTempCoAttack(context.Background(), w.seed)
		if err != nil {
			t.Fatalf("seed %d: %v", w.seed, err)
		}
		if r.Queries != w.queries || r.RelationsFound != w.relFound || r.RelationsRight != w.relOkay {
			t.Errorf("seed %d: got (queries=%d found=%d right=%d), want (%d %d %d)",
				w.seed, r.Queries, r.RelationsFound, r.RelationsRight, w.queries, w.relFound, w.relOkay)
		}
	}
}
